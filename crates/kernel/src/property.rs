//! Architecture properties.
//!
//! Paper §3.6: "we introduce architecture properties that can be set by
//! users or by monitoring services when existing components are removed or
//! are erroneous" and (SCA, Fig. 3) "properties are read by the component
//! when it is instantiated, allowing to customize its behaviour according
//! to the current state of the architecture". The property store is the
//! shared blackboard between users, monitors, coordinators and components.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::value::Value;

/// A change observed on the property store.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyChange {
    /// Property key, e.g. `buffer.free_frames`.
    pub key: String,
    /// Previous value, if any.
    pub old: Option<Value>,
    /// New value (`None` means the property was removed).
    pub new: Option<Value>,
}

type Watcher = Box<dyn Fn(&PropertyChange) + Send + Sync>;

/// Shared, watchable key/value store of architecture state.
#[derive(Clone, Default)]
pub struct PropertyStore {
    inner: Arc<RwLock<BTreeMap<String, Value>>>,
    watchers: Arc<RwLock<Vec<Watcher>>>,
}

impl PropertyStore {
    /// Create an empty store.
    pub fn new() -> PropertyStore {
        PropertyStore::default()
    }

    /// Read a property.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.inner.read().get(key).cloned()
    }

    /// Read a property as i64 if present and integral.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(|v| v.as_int().ok())
    }

    /// Set a property, notifying watchers of the change.
    pub fn set(&self, key: &str, value: impl Into<Value>) {
        let value = value.into();
        let old = self.inner.write().insert(key.to_string(), value.clone());
        if old.as_ref() != Some(&value) {
            self.notify(PropertyChange {
                key: key.to_string(),
                old,
                new: Some(value),
            });
        }
    }

    /// Remove a property, notifying watchers if it existed.
    pub fn remove(&self, key: &str) {
        let old = self.inner.write().remove(key);
        if old.is_some() {
            self.notify(PropertyChange {
                key: key.to_string(),
                old,
                new: None,
            });
        }
    }

    /// Atomically add `delta` to an integer property (missing counts as 0)
    /// and return the new value. Used by resource monitors.
    pub fn add_int(&self, key: &str, delta: i64) -> i64 {
        let (old, new) = {
            let mut map = self.inner.write();
            let old = map.get(key).and_then(|v| v.as_int().ok());
            let new = old.unwrap_or(0) + delta;
            map.insert(key.to_string(), Value::Int(new));
            (old, new)
        };
        self.notify(PropertyChange {
            key: key.to_string(),
            old: old.map(Value::Int),
            new: Some(Value::Int(new)),
        });
        new
    }

    /// Register a watcher invoked on every change. Watchers run on the
    /// mutating thread; they must be quick and must not mutate the store
    /// (re-entrancy would deadlock by design — properties are state, not a
    /// message bus; use `EventBus` for reactions that cascade).
    pub fn watch(&self, watcher: impl Fn(&PropertyChange) + Send + Sync + 'static) {
        self.watchers.write().push(Box::new(watcher));
    }

    /// Keys currently present, in sorted order.
    pub fn keys(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Snapshot of all properties with a given prefix, e.g. `buffer.`.
    pub fn with_prefix(&self, prefix: &str) -> BTreeMap<String, Value> {
        self.inner
            .read()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn notify(&self, change: PropertyChange) {
        for w in self.watchers.read().iter() {
            w(&change);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn set_get_remove() {
        let p = PropertyStore::new();
        assert_eq!(p.get("x"), None);
        p.set("x", 7i64);
        assert_eq!(p.get_int("x"), Some(7));
        p.remove("x");
        assert_eq!(p.get("x"), None);
    }

    #[test]
    fn watchers_see_changes() {
        let p = PropertyStore::new();
        let seen = Arc::new(RwLock::new(Vec::new()));
        let seen2 = seen.clone();
        p.watch(move |c| seen2.write().push(c.clone()));

        p.set("mode", "rw");
        p.set("mode", "ro");
        p.remove("mode");

        let changes = seen.read();
        assert_eq!(changes.len(), 3);
        assert_eq!(changes[0].old, None);
        assert_eq!(changes[1].old, Some(Value::Str("rw".into())));
        assert_eq!(changes[2].new, None);
    }

    #[test]
    fn redundant_set_does_not_notify() {
        let p = PropertyStore::new();
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = count.clone();
        p.watch(move |_| {
            count2.fetch_add(1, Ordering::SeqCst);
        });
        p.set("k", 1i64);
        p.set("k", 1i64);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn add_int_accumulates() {
        let p = PropertyStore::new();
        assert_eq!(p.add_int("counter", 5), 5);
        assert_eq!(p.add_int("counter", -2), 3);
        assert_eq!(p.get_int("counter"), Some(3));
    }

    #[test]
    fn prefix_snapshot() {
        let p = PropertyStore::new();
        p.set("buffer.frames", 100i64);
        p.set("buffer.dirty", 3i64);
        p.set("disk.pages", 9i64);
        let snap = p.with_prefix("buffer.");
        assert_eq!(snap.len(), 2);
        assert!(snap.contains_key("buffer.frames"));
        assert!(!snap.contains_key("disk.pages"));
        assert_eq!(p.keys().len(), 3);
    }

    #[test]
    fn concurrent_add_int_is_atomic() {
        let p = PropertyStore::new();
        let mut handles = vec![];
        for _ in 0..8 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    p.add_int("n", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.get_int("n"), Some(4000));
    }
}
