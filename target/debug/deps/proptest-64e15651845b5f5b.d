/root/repo/target/debug/deps/proptest-64e15651845b5f5b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-64e15651845b5f5b.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-64e15651845b5f5b.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
