//! Overload protection: admission control, memory budgets, and
//! cooperative cancellation.
//!
//! The paper's *flexibility by selection* (Fig. 6) lets the coordinator
//! pick a cheaper provider when quality constraints demand it; under
//! sustained load that choice must be made *at admission time*. The
//! [`Governor`] tracks in-flight queries against a concurrency
//! watermark: below it queries run normally, above it they either wait
//! in a bounded queue, are admitted **degraded** (the session's contract
//! allows lower quality, so the coordinator selects the cheaper engine
//! variant), or are **shed** with a typed, recoverable
//! [`ServiceError::Overloaded`] that callers may retry with backoff.
//!
//! Two companion primitives thread through the execution layers:
//!
//! * [`CancelToken`] — cooperative cancellation with an optional
//!   deadline, checked per-page / per-batch / per-merge-run so a query
//!   aborts within one scheduling quantum;
//! * [`QueryMemory`] — per-query memory accounting against an optional
//!   shared [`MemoryPool`], so sort / hash-join / aggregate / DISTINCT
//!   either spill or fail with a recoverable resource error instead of
//!   blowing the process heap.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// The admission queue uses std's Mutex/Condvar pair (the vendored
// parking_lot shim has no Condvar); the small metadata locks stay on
// parking_lot like the rest of the kernel.
use std::sync::{Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

use crate::error::{Result, ServiceError};
use crate::events::{Event, EventBus};

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// Cooperative cancellation token, cloned into every operator of a
/// running statement. Checks are cheap (two atomic loads on the happy
/// path); operators call [`CancelToken::check`] at natural quanta —
/// per heap page, per batch, per merge step — so cancellation and
/// deadline expiry surface within one quantum.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    reason: Mutex<String>,
    /// Absolute deadline, fixed at construction.
    deadline: Option<Instant>,
    /// The deadline budget in ms, kept for the error message.
    budget_ms: u64,
    /// Deterministic injection: when >= 0, the countdown'th call to
    /// `check` cancels the token ("fail at exactly this quantum" — the
    /// torture suite's cancel analogue of `crash_after_events`).
    countdown: AtomicI64,
    /// Total `check` calls, for profiling runs that enumerate quanta.
    checks: AtomicU64,
}

impl Default for CancelInner {
    fn default() -> CancelInner {
        CancelInner {
            cancelled: AtomicBool::new(false),
            reason: Mutex::new(String::new()),
            deadline: None,
            budget_ms: 0,
            countdown: AtomicI64::new(-1),
            checks: AtomicU64::new(0),
        }
    }
}

impl CancelToken {
    /// A token that never fires on its own (cancel explicitly or via
    /// [`CancelToken::cancel_after_checks`]).
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token whose deadline expires `budget` from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                deadline: Some(Instant::now() + budget),
                budget_ms: budget.as_millis() as u64,
                ..CancelInner::default()
            }),
        }
    }

    /// Cancel now, with a reason that surfaces in the error text.
    pub fn cancel(&self, reason: &str) {
        let mut r = self.inner.reason.lock();
        if !self.inner.cancelled.swap(true, Ordering::SeqCst) {
            *r = reason.to_string();
        }
    }

    /// Arm deterministic injection: the `n`-th subsequent call to
    /// [`CancelToken::check`] cancels the token (n = 1 fires on the
    /// very next check). Used by the torture suite to cancel at every
    /// recorded quantum in turn.
    pub fn cancel_after_checks(&self, n: u64) {
        self.inner.countdown.store(n as i64, Ordering::SeqCst);
    }

    /// How many times `check` has been called on this token.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// Whether the token has been cancelled (by call, countdown, or
    /// deadline observed by a previous check).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// One cooperative cancellation point. Returns the typed
    /// [`ServiceError::Cancelled`] once the token is cancelled or its
    /// deadline has passed; `Ok(())` otherwise.
    pub fn check(&self) -> Result<()> {
        self.inner.checks.fetch_add(1, Ordering::Relaxed);
        if self.inner.countdown.load(Ordering::SeqCst) >= 0
            && self.inner.countdown.fetch_sub(1, Ordering::SeqCst) == 1
        {
            self.cancel("injected cancellation");
        }
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return Err(ServiceError::Cancelled {
                reason: self.inner.reason.lock().clone(),
            });
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                let reason = format!("deadline of {}ms exceeded", self.inner.budget_ms);
                self.cancel(&reason);
                return Err(ServiceError::Cancelled { reason });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

/// A shared memory pool (the governor's global budget). Cloning shares
/// the pool; the default pool is unlimited.
#[derive(Clone, Debug)]
pub struct MemoryPool {
    inner: Arc<PoolInner>,
}

#[derive(Debug)]
struct PoolInner {
    capacity: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl Default for MemoryPool {
    fn default() -> MemoryPool {
        MemoryPool::new(u64::MAX)
    }
}

impl MemoryPool {
    /// A pool holding `capacity` bytes.
    pub fn new(capacity: u64) -> MemoryPool {
        MemoryPool {
            inner: Arc::new(PoolInner {
                capacity,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            }),
        }
    }

    /// Reserve bytes, failing with a recoverable `ResourceExhausted`
    /// when the pool cannot satisfy the request.
    pub fn reserve(&self, bytes: u64) -> Result<()> {
        let new = self.inner.used.fetch_add(bytes, Ordering::SeqCst) + bytes;
        if new > self.inner.capacity {
            self.inner.used.fetch_sub(bytes, Ordering::SeqCst);
            return Err(ServiceError::ResourceExhausted {
                resource: "memory".into(),
                requested: bytes,
                available: self.inner.capacity.saturating_sub(new - bytes),
            });
        }
        self.inner.peak.fetch_max(new, Ordering::SeqCst);
        Ok(())
    }

    /// Release a previous reservation (over-release is a bug upstream;
    /// clamped via saturating subtraction of the stored value).
    pub fn release(&self, bytes: u64) {
        let mut cur = self.inner.used.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.inner.used.compare_exchange(
                cur,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::SeqCst)
    }

    /// High-watermark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::SeqCst)
    }

    /// Pool capacity.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }
}

/// Per-query memory accounting: a local limit plus an optional share of
/// the governor's global [`MemoryPool`]. Cloned into every operator of
/// a statement; everything still reserved is returned to the pool when
/// the last clone drops (end of statement), so operators only need to
/// `charge` — precise paired releases are an optimisation (the sorter
/// uses them when it spills).
#[derive(Clone, Debug, Default)]
pub struct QueryMemory {
    inner: Arc<QueryMemInner>,
}

#[derive(Debug)]
struct QueryMemInner {
    limit: u64,
    pool: Option<MemoryPool>,
    used: AtomicU64,
    peak: AtomicU64,
}

impl Default for QueryMemInner {
    fn default() -> QueryMemInner {
        QueryMemInner {
            limit: u64::MAX,
            pool: None,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }
}

impl Drop for QueryMemInner {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            pool.release(self.used.load(Ordering::SeqCst));
        }
    }
}

impl QueryMemory {
    /// Unlimited accounting (no limit, no pool) — the default context.
    pub fn unlimited() -> QueryMemory {
        QueryMemory::default()
    }

    /// Accounting against `limit` bytes and, optionally, a shared pool.
    pub fn new(limit: u64, pool: Option<MemoryPool>) -> QueryMemory {
        QueryMemory {
            inner: Arc::new(QueryMemInner {
                limit,
                pool,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            }),
        }
    }

    /// Reserve bytes against the query limit and the shared pool.
    /// Fails with a recoverable `ResourceExhausted` on either budget.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        let new = self.inner.used.fetch_add(bytes, Ordering::SeqCst) + bytes;
        if new > self.inner.limit {
            self.inner.used.fetch_sub(bytes, Ordering::SeqCst);
            return Err(ServiceError::ResourceExhausted {
                resource: "query-memory".into(),
                requested: bytes,
                available: self.inner.limit.saturating_sub(new - bytes),
            });
        }
        if let Some(pool) = &self.inner.pool {
            if let Err(e) = pool.reserve(bytes) {
                self.inner.used.fetch_sub(bytes, Ordering::SeqCst);
                return Err(e);
            }
        }
        self.inner.peak.fetch_max(new, Ordering::SeqCst);
        Ok(())
    }

    /// Release part of the reservation early (spill paths).
    pub fn release(&self, bytes: u64) {
        let mut cur = self.inner.used.load(Ordering::SeqCst);
        let released;
        loop {
            let next = cur.saturating_sub(bytes);
            match self.inner.used.compare_exchange(
                cur,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    released = cur - next;
                    break;
                }
                Err(actual) => cur = actual,
            }
        }
        if let Some(pool) = &self.inner.pool {
            pool.release(released);
        }
    }

    /// Bytes currently charged to this query.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::SeqCst)
    }

    /// High-watermark of bytes charged to this query.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::SeqCst)
    }

    /// The per-query limit.
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }
}

/// Everything an executing operator needs from the governor: the
/// cancellation token and the memory account. Cloned freely (Arc
/// inside); the default context is unlimited and never cancels.
#[derive(Clone, Debug, Default)]
pub struct ExecContext {
    /// Cooperative cancellation / deadline.
    pub cancel: CancelToken,
    /// Memory accounting.
    pub memory: QueryMemory,
}

impl ExecContext {
    /// No limits, never cancels — what unmanaged callers use.
    pub fn unlimited() -> ExecContext {
        ExecContext::default()
    }

    /// A context from explicit parts.
    pub fn new(cancel: CancelToken, memory: QueryMemory) -> ExecContext {
        ExecContext { cancel, memory }
    }

    /// One cancellation point (see [`CancelToken::check`]).
    pub fn check(&self) -> Result<()> {
        self.cancel.check()
    }

    /// Reserve operator memory (see [`QueryMemory::charge`]).
    pub fn charge(&self, bytes: u64) -> Result<()> {
        self.memory.charge(bytes)
    }

    /// Reserve if possible; `false` signals the caller to spill.
    pub fn try_charge(&self, bytes: u64) -> bool {
        self.memory.charge(bytes).is_ok()
    }

    /// Return an early release to the account.
    pub fn release(&self, bytes: u64) {
        self.memory.release(bytes)
    }
}

// ---------------------------------------------------------------------------
// The governor
// ---------------------------------------------------------------------------

/// Governor tunables. The defaults describe a small node; profiles
/// override them (full-fledged: enabled, embedded: disabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Master switch; disabled admits everything with no accounting.
    pub enabled: bool,
    /// Concurrency high-watermark: queries admitted normally.
    pub max_concurrent: usize,
    /// Bounded admission queue depth; also bounds how far degraded
    /// admissions may overshoot the watermark.
    pub queue_depth: usize,
    /// How long a queued query waits for a slot before being shed.
    pub queue_wait_ms: u64,
    /// Global memory pool for all managed queries, in bytes.
    pub memory_capacity: u64,
    /// Default per-query memory limit, in bytes.
    pub query_memory: u64,
    /// Sort budget forced onto degraded admissions, in bytes.
    pub degraded_sort_budget: usize,
}

impl Default for GovernorConfig {
    fn default() -> GovernorConfig {
        GovernorConfig {
            enabled: false,
            max_concurrent: 4,
            queue_depth: 8,
            queue_wait_ms: 100,
            memory_capacity: 64 << 20,
            query_memory: 16 << 20,
            degraded_sort_budget: 1 << 20,
        }
    }
}

/// How a query was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionKind {
    /// Below the watermark: full-quality plan.
    Normal,
    /// Over the watermark but the session's contract allows degraded
    /// quality: admitted immediately with the cheaper plan.
    Degraded,
}

/// RAII admission: holding it occupies a governor slot; dropping it
/// frees the slot and wakes one queued query.
#[derive(Debug)]
pub struct Admission {
    kind: AdmissionKind,
    _ticket: Option<Ticket>,
}

impl Admission {
    /// How this query was admitted.
    pub fn kind(&self) -> AdmissionKind {
        self.kind
    }

    /// Whether the governor downgraded this query's quality contract.
    pub fn is_degraded(&self) -> bool {
        self.kind == AdmissionKind::Degraded
    }
}

struct Ticket {
    gov: Arc<GovernorInner>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket")
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        {
            let mut st = self.gov.state.lock().expect("governor state poisoned");
            st.in_flight = st.in_flight.saturating_sub(1);
        }
        self.gov.freed.notify_one();
    }
}

#[derive(Default)]
struct GovState {
    in_flight: usize,
    waiting: usize,
}

struct GovernorInner {
    cfg: GovernorConfig,
    state: StdMutex<GovState>,
    freed: Condvar,
    pool: MemoryPool,
    admitted: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    events: Mutex<Option<EventBus>>,
}

/// Counters and gauges for monitoring (see
/// `extension::monitoring::GovernorMonitorService`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorSnapshot {
    /// Whether the governor is enforcing anything.
    pub enabled: bool,
    /// Queries currently holding a slot.
    pub in_flight: usize,
    /// Queries currently parked in the admission queue.
    pub waiting: usize,
    /// Queries admitted at full quality since open.
    pub admitted: u64,
    /// Queries admitted degraded since open.
    pub degraded: u64,
    /// Queries shed with `Overloaded` since open.
    pub shed: u64,
    /// Queries cancelled (deadline or explicit) since open.
    pub cancelled: u64,
    /// Bytes currently reserved from the global pool.
    pub mem_used: u64,
    /// High-watermark of reserved bytes.
    pub mem_peak: u64,
    /// Global pool capacity.
    pub mem_capacity: u64,
}

/// The admission-control service: bounded concurrency with a bounded
/// wait queue, quality-aware degraded admission, and a global memory
/// pool. Cloning shares the governor.
#[derive(Clone)]
pub struct Governor {
    inner: Arc<GovernorInner>,
}

impl Governor {
    /// Build a governor from its config.
    pub fn new(cfg: GovernorConfig) -> Governor {
        let pool = if cfg.enabled {
            MemoryPool::new(cfg.memory_capacity)
        } else {
            MemoryPool::default()
        };
        Governor {
            inner: Arc::new(GovernorInner {
                cfg,
                state: StdMutex::new(GovState::default()),
                freed: Condvar::new(),
                pool,
                admitted: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                events: Mutex::new(None),
            }),
        }
    }

    /// The configuration this governor enforces.
    pub fn config(&self) -> &GovernorConfig {
        &self.inner.cfg
    }

    /// Attach a kernel event bus: shed and degraded admissions publish
    /// `governor.shed` / `governor.degraded` events.
    pub fn set_event_bus(&self, bus: EventBus) {
        *self.inner.events.lock() = Some(bus);
    }

    /// Admit one query. Below the watermark this returns immediately;
    /// above it, sessions whose contract allows degraded quality are
    /// admitted [`AdmissionKind::Degraded`] at once, others wait in the
    /// bounded queue and are shed with [`ServiceError::Overloaded`]
    /// when the queue is full or the wait times out.
    pub fn admit(&self, allow_degraded: bool) -> Result<Admission> {
        if !self.inner.cfg.enabled {
            self.inner.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Admission {
                kind: AdmissionKind::Normal,
                _ticket: None,
            });
        }
        let cfg = &self.inner.cfg;
        let mut st = self.inner.state.lock().expect("governor state poisoned");
        if st.in_flight < cfg.max_concurrent {
            st.in_flight += 1;
            drop(st);
            self.inner.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(self.ticket(AdmissionKind::Normal));
        }
        if allow_degraded && st.in_flight < cfg.max_concurrent + cfg.queue_depth {
            st.in_flight += 1;
            let in_flight = st.in_flight;
            drop(st);
            self.inner.degraded.fetch_add(1, Ordering::Relaxed);
            self.publish(
                "governor.degraded",
                format!("admitted degraded at {in_flight} in flight"),
            );
            return Ok(self.ticket(AdmissionKind::Degraded));
        }
        if st.waiting >= cfg.queue_depth {
            let (in_flight, waiting) = (st.in_flight, st.waiting);
            drop(st);
            return Err(self.shed(in_flight, waiting));
        }
        st.waiting += 1;
        let give_up = Instant::now() + Duration::from_millis(cfg.queue_wait_ms);
        loop {
            if st.in_flight < cfg.max_concurrent {
                st.waiting -= 1;
                st.in_flight += 1;
                drop(st);
                self.inner.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(self.ticket(AdmissionKind::Normal));
            }
            let remaining = give_up.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                st.waiting -= 1;
                let (in_flight, waiting) = (st.in_flight, st.waiting);
                drop(st);
                return Err(self.shed(in_flight, waiting));
            }
            st = self
                .inner
                .freed
                .wait_timeout(st, remaining)
                .expect("governor state poisoned")
                .0;
        }
    }

    /// A memory account for one query: the session limit (or the
    /// config default when the governor is enabled) backed by the
    /// global pool. With the governor disabled and no session limit,
    /// the account is unlimited.
    pub fn query_memory(&self, session_limit: Option<u64>) -> QueryMemory {
        let limit = session_limit.or_else(|| {
            self.inner
                .cfg
                .enabled
                .then_some(self.inner.cfg.query_memory)
        });
        match limit {
            Some(limit) if self.inner.cfg.enabled => {
                QueryMemory::new(limit, Some(self.inner.pool.clone()))
            }
            Some(limit) => QueryMemory::new(limit, None),
            None => QueryMemory::unlimited(),
        }
    }

    /// Record one cancelled query (deadline or explicit).
    pub fn note_cancelled(&self) {
        self.inner.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters and gauges.
    pub fn snapshot(&self) -> GovernorSnapshot {
        let st = self.inner.state.lock().expect("governor state poisoned");
        GovernorSnapshot {
            enabled: self.inner.cfg.enabled,
            in_flight: st.in_flight,
            waiting: st.waiting,
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            degraded: self.inner.degraded.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            mem_used: self.inner.pool.used(),
            mem_peak: self.inner.pool.peak(),
            mem_capacity: self.inner.pool.capacity(),
        }
    }

    fn ticket(&self, kind: AdmissionKind) -> Admission {
        Admission {
            kind,
            _ticket: Some(Ticket {
                gov: self.inner.clone(),
            }),
        }
    }

    fn shed(&self, in_flight: usize, waiting: usize) -> ServiceError {
        self.inner.shed.fetch_add(1, Ordering::Relaxed);
        self.publish(
            "governor.shed",
            format!("shed at {in_flight} in flight, {waiting} waiting"),
        );
        ServiceError::Overloaded {
            in_flight: in_flight as u64,
            waiting: waiting as u64,
        }
    }

    fn publish(&self, topic: &str, detail: String) {
        if let Some(bus) = self.inner.events.lock().as_ref() {
            bus.publish(Event::Custom {
                topic: topic.into(),
                detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled(max_concurrent: usize, queue_depth: usize) -> Governor {
        Governor::new(GovernorConfig {
            enabled: true,
            max_concurrent,
            queue_depth,
            queue_wait_ms: 10,
            ..GovernorConfig::default()
        })
    }

    #[test]
    fn disabled_governor_admits_everything() {
        let gov = Governor::new(GovernorConfig::default());
        let tickets: Vec<_> = (0..100).map(|_| gov.admit(false).unwrap()).collect();
        assert!(tickets.iter().all(|a| a.kind() == AdmissionKind::Normal));
        let snap = gov.snapshot();
        assert_eq!(snap.admitted, 100);
        assert_eq!(snap.shed, 0);
        assert!(!snap.enabled);
    }

    #[test]
    fn slots_are_raii_and_reusable() {
        let gov = enabled(1, 0);
        let first = gov.admit(false).unwrap();
        assert_eq!(gov.snapshot().in_flight, 1);
        // Queue depth 0: the second query is shed immediately.
        let err = gov.admit(false).unwrap_err();
        assert!(matches!(err, ServiceError::Overloaded { .. }));
        assert!(err.is_recoverable());
        drop(first);
        assert_eq!(gov.snapshot().in_flight, 0);
        gov.admit(false).unwrap();
        let snap = gov.snapshot();
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.shed, 1);
    }

    #[test]
    fn degraded_contract_admits_over_watermark() {
        let gov = enabled(1, 2);
        let _full = gov.admit(false).unwrap();
        let second = gov.admit(true).unwrap();
        assert!(second.is_degraded());
        let snap = gov.snapshot();
        assert_eq!(snap.in_flight, 2);
        assert_eq!(snap.degraded, 1);
        // Even degraded admission is bounded (watermark + queue depth).
        let _third = gov.admit(true).unwrap();
        let err = gov.admit(true).unwrap_err();
        assert!(matches!(err, ServiceError::Overloaded { .. }));
    }

    #[test]
    fn queued_query_gets_freed_slot() {
        let gov = Governor::new(GovernorConfig {
            enabled: true,
            max_concurrent: 1,
            queue_depth: 4,
            queue_wait_ms: 5_000,
            ..GovernorConfig::default()
        });
        let first = gov.admit(false).unwrap();
        let gov2 = gov.clone();
        let waiter = std::thread::spawn(move || gov2.admit(false).map(|a| a.kind()));
        // Give the waiter time to park, then free the slot.
        std::thread::sleep(Duration::from_millis(20));
        drop(first);
        assert_eq!(waiter.join().unwrap().unwrap(), AdmissionKind::Normal);
        assert_eq!(gov.snapshot().admitted, 2);
    }

    #[test]
    fn shed_under_forced_low_watermark_stress() {
        // The CI stress case: a watermark of 1 with no queue under a
        // burst of concurrent admissions must shed all but the winners
        // and never lose a slot.
        let gov = enabled(1, 0);
        let events = EventBus::new();
        let rx = events.subscribe();
        gov.set_event_bus(events);
        // Pin the only slot for the whole burst so every concurrent
        // admission must shed, deterministically even on one core.
        let blocker = gov.admit(false).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = gov.clone();
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                for _ in 0..50 {
                    if let Ok(t) = g.admit(false) {
                        ok += 1;
                        drop(t);
                    }
                }
                ok
            }));
        }
        let admitted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(admitted, 0, "the pinned slot sheds the whole burst");
        drop(blocker);
        let snap = gov.snapshot();
        assert_eq!(snap.in_flight, 0, "all slots returned");
        assert_eq!(snap.admitted, 1);
        assert_eq!(snap.shed, 400);
        let shed_events = rx
            .try_iter()
            .filter(|e| matches!(e, Event::Custom { topic, .. } if topic == "governor.shed"))
            .count() as u64;
        assert_eq!(shed_events, snap.shed);
    }

    #[test]
    fn cancel_token_explicit_and_injected() {
        let t = CancelToken::new();
        t.check().unwrap();
        t.cancel("user request");
        let err = t.check().unwrap_err();
        assert_eq!(err.code(), "cancelled");
        assert!(!err.is_recoverable());
        assert!(err.to_string().contains("user request"));

        let t = CancelToken::new();
        t.cancel_after_checks(3);
        t.check().unwrap();
        t.check().unwrap();
        let err = t.check().unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert!(t.is_cancelled());
        assert_eq!(t.checks(), 3);
    }

    #[test]
    fn cancel_token_deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        let err = t.check().unwrap_err();
        assert_eq!(err.code(), "cancelled");
        assert!(err.to_string().contains("deadline"));
        // Sticky: later checks keep failing.
        assert!(t.check().is_err());
    }

    #[test]
    fn query_memory_enforces_limit_and_releases_pool_on_drop() {
        let pool = MemoryPool::new(1000);
        let mem = QueryMemory::new(600, Some(pool.clone()));
        mem.charge(500).unwrap();
        assert_eq!(pool.used(), 500);
        let err = mem.charge(200).unwrap_err();
        assert!(err.is_recoverable());
        assert!(matches!(
            err,
            ServiceError::ResourceExhausted { requested: 200, .. }
        ));
        assert_eq!(pool.used(), 500, "failed charge rolls back");
        mem.release(100);
        assert_eq!(mem.used(), 400);
        assert_eq!(mem.peak(), 500);
        drop(mem);
        assert_eq!(pool.used(), 0, "drop returns everything");
        assert_eq!(pool.peak(), 500);
    }

    #[test]
    fn pool_exhaustion_fails_before_query_limit() {
        let pool = MemoryPool::new(100);
        let a = QueryMemory::new(u64::MAX, Some(pool.clone()));
        let b = QueryMemory::new(u64::MAX, Some(pool.clone()));
        a.charge(80).unwrap();
        let err = b.charge(50).unwrap_err();
        assert!(matches!(err, ServiceError::ResourceExhausted { .. }));
        assert_eq!(b.used(), 0);
        drop(a);
        b.charge(50).unwrap();
    }

    #[test]
    fn governor_query_memory_tiers() {
        let on = Governor::new(GovernorConfig {
            enabled: true,
            query_memory: 123,
            ..GovernorConfig::default()
        });
        assert_eq!(on.query_memory(None).limit(), 123);
        assert_eq!(on.query_memory(Some(7)).limit(), 7);
        let off = Governor::new(GovernorConfig::default());
        assert_eq!(off.query_memory(None).limit(), u64::MAX);
        // A session limit is enforced even with the governor off.
        let m = off.query_memory(Some(10));
        assert!(m.charge(11).is_err());
    }

    #[test]
    fn exec_context_default_is_unlimited() {
        let ctx = ExecContext::default();
        ctx.check().unwrap();
        ctx.charge(u64::MAX / 2).unwrap();
        assert!(ctx.try_charge(1));
        ctx.release(5);
    }
}
