//! Invocation metrics collected by the service bus.
//!
//! Paper §3.1: resource-management processes "support information about
//! service working states"; §4: developers "require additional information
//! to monitor the state of a storage service (e.g., work load ...)".
//! The bus records per-service counters that coordinators and monitoring
//! services read, and that the benchmark harness uses to report overheads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::service::ServiceId;

/// Lock-free counters for one service.
#[derive(Default)]
pub struct ServiceCounters {
    /// Successful invocations.
    pub calls: AtomicU64,
    /// Failed invocations.
    pub errors: AtomicU64,
    /// Total latency of completed invocations, nanoseconds.
    pub total_latency_ns: AtomicU64,
    /// Total request payload bytes (approximate).
    pub request_bytes: AtomicU64,
    /// Retries spent on this service by the resilient invocation path.
    pub retries: AtomicU64,
    /// Times this service's circuit breaker tripped open.
    pub breaker_trips: AtomicU64,
    /// Times a call was re-routed *away* from this service to a
    /// substitute (synchronous failover).
    pub failovers: AtomicU64,
    /// Times a call was routed around this service because it reported
    /// `Health::Degraded` (hedging).
    pub hedges: AtomicU64,
}

impl ServiceCounters {
    /// Record one completed call.
    pub fn record(&self, ok: bool, latency_ns: u64, request_bytes: u64) {
        if ok {
            self.calls.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_latency_ns.fetch_add(latency_ns, Ordering::Relaxed);
        self.request_bytes.fetch_add(request_bytes, Ordering::Relaxed);
    }

    /// Record one retry of a failed attempt.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one breaker trip.
    pub fn record_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failover away from this service.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one hedge away from this service.
    pub fn record_hedge(&self) {
        self.hedges.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            calls: self.calls.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            total_latency_ns: self.total_latency_ns.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of one service's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountersSnapshot {
    /// Successful invocations.
    pub calls: u64,
    /// Failed invocations.
    pub errors: u64,
    /// Total latency, nanoseconds.
    pub total_latency_ns: u64,
    /// Total request bytes.
    pub request_bytes: u64,
    /// Retries spent by the resilient invocation path.
    pub retries: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Failovers away from this service.
    pub failovers: u64,
    /// Hedges away from this service while degraded.
    pub hedges: u64,
}

impl CountersSnapshot {
    /// Mean latency per completed call, nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        let n = self.calls + self.errors;
        if n == 0 {
            0.0
        } else {
            self.total_latency_ns as f64 / n as f64
        }
    }

    /// Error rate among completed calls.
    pub fn error_rate(&self) -> f64 {
        let n = self.calls + self.errors;
        if n == 0 {
            0.0
        } else {
            self.errors as f64 / n as f64
        }
    }
}

/// Registry of per-service counters, shared by the bus and monitors.
#[derive(Default, Clone)]
pub struct Metrics {
    inner: Arc<RwLock<HashMap<ServiceId, Arc<ServiceCounters>>>>,
}

impl Metrics {
    /// Create an empty metrics registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Counters for a service, created on first use.
    pub fn counters(&self, id: ServiceId) -> Arc<ServiceCounters> {
        if let Some(c) = self.inner.read().get(&id) {
            return c.clone();
        }
        self.inner
            .write()
            .entry(id)
            .or_insert_with(|| Arc::new(ServiceCounters::default()))
            .clone()
    }

    /// Snapshot for one service (zeroes if never invoked).
    pub fn snapshot(&self, id: ServiceId) -> CountersSnapshot {
        self.inner
            .read()
            .get(&id)
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }

    /// Snapshot of every tracked service.
    pub fn snapshot_all(&self) -> Vec<(ServiceId, CountersSnapshot)> {
        let mut out: Vec<_> = self
            .inner
            .read()
            .iter()
            .map(|(id, c)| (*id, c.snapshot()))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Drop counters of an unregistered service.
    pub fn forget(&self, id: ServiceId) {
        self.inner.write().remove(&id);
    }

    /// Total calls across all services — the bus-level "work load" figure.
    pub fn total_calls(&self) -> u64 {
        self.inner
            .read()
            .values()
            .map(|c| c.calls.load(Ordering::Relaxed) + c.errors.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = Metrics::new();
        let id = ServiceId(1);
        m.counters(id).record(true, 100, 10);
        m.counters(id).record(false, 300, 20);
        let s = m.snapshot(id);
        assert_eq!(s.calls, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.total_latency_ns, 400);
        assert_eq!(s.request_bytes, 30);
        assert_eq!(s.mean_latency_ns(), 200.0);
        assert_eq!(s.error_rate(), 0.5);
    }

    #[test]
    fn resilience_counters_recorded() {
        let m = Metrics::new();
        let id = ServiceId(2);
        let c = m.counters(id);
        c.record_retry();
        c.record_retry();
        c.record_trip();
        c.record_failover();
        c.record_hedge();
        let s = m.snapshot(id);
        assert_eq!(s.retries, 2);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.hedges, 1);
        // Resilience bookkeeping does not inflate the call/error figures.
        assert_eq!(s.calls, 0);
        assert_eq!(s.errors, 0);
    }

    #[test]
    fn snapshot_of_unknown_service_is_zero() {
        let m = Metrics::new();
        let s = m.snapshot(ServiceId(99));
        assert_eq!(s.calls, 0);
        assert_eq!(s.mean_latency_ns(), 0.0);
        assert_eq!(s.error_rate(), 0.0);
    }

    #[test]
    fn forget_removes_counters() {
        let m = Metrics::new();
        let id = ServiceId(7);
        m.counters(id).record(true, 1, 1);
        assert_eq!(m.total_calls(), 1);
        m.forget(id);
        assert_eq!(m.total_calls(), 0);
        assert_eq!(m.snapshot_all().len(), 0);
    }

    #[test]
    fn counters_shared_across_lookups() {
        let m = Metrics::new();
        let id = ServiceId(3);
        let a = m.counters(id);
        let b = m.counters(id);
        a.record(true, 5, 0);
        b.record(true, 7, 0);
        assert_eq!(m.snapshot(id).calls, 2);
        assert_eq!(m.snapshot(id).total_latency_ns, 12);
    }

    #[test]
    fn concurrent_recording() {
        let m = Metrics::new();
        let id = ServiceId(11);
        let mut handles = vec![];
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.counters(id).record(true, 1, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot(id).calls, 8000);
    }
}
