/root/repo/target/debug/deps/sbdms_data-185df8990953c873.d: crates/data/src/lib.rs crates/data/src/ast.rs crates/data/src/catalog.rs crates/data/src/executor.rs crates/data/src/parser.rs crates/data/src/planner.rs crates/data/src/schema.rs crates/data/src/services.rs crates/data/src/table.rs crates/data/src/txn.rs

/root/repo/target/debug/deps/libsbdms_data-185df8990953c873.rlib: crates/data/src/lib.rs crates/data/src/ast.rs crates/data/src/catalog.rs crates/data/src/executor.rs crates/data/src/parser.rs crates/data/src/planner.rs crates/data/src/schema.rs crates/data/src/services.rs crates/data/src/table.rs crates/data/src/txn.rs

/root/repo/target/debug/deps/libsbdms_data-185df8990953c873.rmeta: crates/data/src/lib.rs crates/data/src/ast.rs crates/data/src/catalog.rs crates/data/src/executor.rs crates/data/src/parser.rs crates/data/src/planner.rs crates/data/src/schema.rs crates/data/src/services.rs crates/data/src/table.rs crates/data/src/txn.rs

crates/data/src/lib.rs:
crates/data/src/ast.rs:
crates/data/src/catalog.rs:
crates/data/src/executor.rs:
crates/data/src/parser.rs:
crates/data/src/planner.rs:
crates/data/src/schema.rs:
crates/data/src/services.rs:
crates/data/src/table.rs:
crates/data/src/txn.rs:
