//! Message shapes of the SQL wire protocol.
//!
//! Every message is one [`Value`] map inside one length-prefixed frame
//! (see [`sbdms_kernel::wire`]). Requests carry an `"op"` discriminator;
//! responses carry `"ok"` plus either a result payload or the typed
//! error map from [`sbdms_kernel::wire::error_value`].
//!
//! ```text
//! client                              server
//!   |-- {op:hello, version:1} --------->|
//!   |<- {ok, kind:hello, protocol:1} ---|
//!   |-- {op:query, sql:"..."} --------->|
//!   |<- {ok, kind:rows, columns, rows} -|
//!   |-- {op:prepare, sql:"..."} ------->|
//!   |<- {ok, kind:prepared, stmt:0} ----|
//!   |-- {op:execute, stmt:0} ---------->|
//!   |<- {ok, kind:rows, ...} -----------|
//!   |-- {op:quit} --------------------->|
//!   |<- {ok, kind:bye} -----------------|
//! ```
//!
//! Rows travel typed: each datum maps onto the kernel's self-describing
//! [`Value`] (NULL/bool/int/float/string survive the round trip
//! losslessly), so the far side reconstructs the exact result an
//! in-process caller would see — the prepared-statement differential
//! test pins that byte-for-byte.

use sbdms_access::record::{Datum, Tuple};
use sbdms_data::executor::QueryResult;
use sbdms_kernel::error::{Result, ServiceError};
use sbdms_kernel::value::Value;

/// Build the client's opening handshake.
pub fn hello_request() -> Value {
    Value::map()
        .with("op", "hello")
        .with("version", sbdms_kernel::wire::PROTOCOL_VERSION)
}

/// Build a plain-SQL request.
pub fn query_request(sql: &str) -> Value {
    Value::map().with("op", "query").with("sql", sql)
}

/// Build a prepare request.
pub fn prepare_request(sql: &str) -> Value {
    Value::map().with("op", "prepare").with("sql", sql)
}

/// Build an execute-prepared request.
pub fn execute_request(stmt: i64) -> Value {
    Value::map().with("op", "execute").with("stmt", stmt)
}

/// Build a close-prepared request.
pub fn close_stmt_request(stmt: i64) -> Value {
    Value::map().with("op", "close_stmt").with("stmt", stmt)
}

/// Build a session-knob request. `deadline_ms` / `memory_limit` set the
/// per-statement deadline and operator memory cap; `Value::Null` clears.
pub fn set_request(key: &str, value: Value) -> Value {
    Value::map().with("op", "set").with("key", key).with("value", value)
}

/// Build the graceful-close request.
pub fn quit_request() -> Value {
    Value::map().with("op", "quit")
}

/// Wrap a server-side error as a response frame.
pub fn error_response(err: &ServiceError) -> Value {
    Value::map()
        .with("ok", false)
        .with("error", sbdms_kernel::wire::error_value(err))
}

/// The server's handshake reply.
pub fn hello_response(connection_id: u64) -> Value {
    Value::map()
        .with("ok", true)
        .with("kind", "hello")
        .with("protocol", sbdms_kernel::wire::PROTOCOL_VERSION)
        .with("connection", connection_id as i64)
}

/// A statement result as a response frame.
pub fn rows_response(result: &QueryResult, in_txn: bool) -> Value {
    let rows: Vec<Value> = result
        .rows
        .iter()
        .map(|row| Value::List(row.iter().map(datum_to_value).collect()))
        .collect();
    let columns: Vec<Value> = result.columns.iter().map(|c| Value::Str(c.clone())).collect();
    Value::map()
        .with("ok", true)
        .with("kind", "rows")
        .with("columns", Value::List(columns))
        .with("rows", Value::List(rows))
        .with("affected", result.affected as i64)
        .with("in_txn", in_txn)
}

/// A prepare result as a response frame.
pub fn prepared_response(stmt: i64, columns: &[String]) -> Value {
    let columns: Vec<Value> = columns.iter().map(|c| Value::Str(c.clone())).collect();
    Value::map()
        .with("ok", true)
        .with("kind", "prepared")
        .with("stmt", stmt)
        .with("columns", Value::List(columns))
}

/// The reply to `close_stmt`.
pub fn closed_response() -> Value {
    Value::map().with("ok", true).with("kind", "closed")
}

/// The reply to `quit`.
pub fn bye_response() -> Value {
    Value::map().with("ok", true).with("kind", "bye")
}

/// Map one datum onto the wire value model.
pub fn datum_to_value(d: &Datum) -> Value {
    match d {
        Datum::Null => Value::Null,
        Datum::Bool(b) => Value::Bool(*b),
        Datum::Int(i) => Value::Int(*i),
        Datum::Float(x) => Value::Float(*x),
        Datum::Str(s) => Value::Str(s.clone()),
    }
}

/// Reverse of [`datum_to_value`].
pub fn value_to_datum(v: &Value) -> Result<Datum> {
    Ok(match v {
        Value::Null => Datum::Null,
        Value::Bool(b) => Datum::Bool(*b),
        Value::Int(i) => Datum::Int(*i),
        Value::Float(x) => Datum::Float(*x),
        Value::Str(s) => Datum::Str(s.clone()),
        other => {
            return Err(ServiceError::InvalidInput(format!(
                "wire row cell is not a datum: {other:?}"
            )))
        }
    })
}

/// Decode a `kind:rows` response payload back into result columns and
/// typed rows. Fails with the frame's typed error if `ok` is false.
pub fn decode_rows(v: &Value) -> Result<(Vec<String>, Vec<Tuple>, usize, bool)> {
    let v = check_ok(v)?;
    let columns = v
        .get("columns")
        .and_then(|c| c.as_list().ok())
        .unwrap_or(&[])
        .iter()
        .map(|c| c.as_str().map(str::to_string))
        .collect::<Result<Vec<_>>>()?;
    let rows = v
        .get("rows")
        .and_then(|r| r.as_list().ok())
        .unwrap_or(&[])
        .iter()
        .map(|row| row.as_list()?.iter().map(value_to_datum).collect::<Result<Tuple>>())
        .collect::<Result<Vec<_>>>()?;
    let affected = v.get("affected").and_then(|a| a.as_int().ok()).unwrap_or(0) as usize;
    let in_txn = v.get("in_txn").and_then(|t| t.as_bool().ok()).unwrap_or(false);
    Ok((columns, rows, affected, in_txn))
}

/// If the response says `ok:false`, surface its typed error; otherwise
/// hand the payload back.
pub fn check_ok(v: &Value) -> Result<&Value> {
    match v.get("ok").and_then(|o| o.as_bool().ok()) {
        Some(true) => Ok(v),
        Some(false) => {
            let err = v
                .get("error")
                .map(sbdms_kernel::wire::value_to_error)
                .unwrap_or_else(|| ServiceError::Internal("error frame without error".into()));
            Err(err)
        }
        None => Err(ServiceError::InvalidInput(
            "response frame without ok field".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datums_round_trip_typed() {
        let row = vec![
            Datum::Null,
            Datum::Bool(true),
            Datum::Int(-7),
            Datum::Float(2.5),
            Datum::Str("x y".into()),
        ];
        for d in &row {
            assert_eq!(&value_to_datum(&datum_to_value(d)).unwrap(), d);
        }
    }

    #[test]
    fn rows_response_round_trips() {
        let result = QueryResult {
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![Datum::Int(1), Datum::Str("one".into())]],
            affected: 0,
        };
        let frame = rows_response(&result, true);
        let (cols, rows, affected, in_txn) = decode_rows(&frame).unwrap();
        assert_eq!(cols, result.columns);
        assert_eq!(rows, result.rows);
        assert_eq!(affected, 0);
        assert!(in_txn);
    }

    #[test]
    fn error_frames_stay_typed() {
        let err = ServiceError::SerializationConflict { reason: "lost update".into() };
        let frame = error_response(&err);
        let back = check_ok(&frame).unwrap_err();
        assert_eq!(back.code(), "conflict");
        assert!(back.is_recoverable());
    }
}
