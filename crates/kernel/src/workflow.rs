//! Workflows: late-bound multi-step service compositions.
//!
//! Paper §3.3: "services are composed dynamically at run time according to
//! architectural changes and user requirements ... services are designed
//! for late binding"; §3.5: "by being able to support multiple workflows
//! for the same task, our SBDMS architecture can choose and use them
//! according to specific requirements ... either based on a service
//! description or by the user who manually specifies different workflows."

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::bus::ServiceBus;
use crate::error::{Result, ServiceError};
use crate::service::ServiceId;
use crate::value::Value;

/// How a step finds its service: the *late-binding* selectors resolve at
/// execution time through the registry, so recomposed architectures are
/// picked up without editing workflows.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// A concrete deployed instance (early binding).
    ById(ServiceId),
    /// A deployment name, resolved at execution time.
    ByName(String),
    /// Best enabled provider of an interface, resolved at execution time.
    ByInterface(String),
}

/// Where a field of a composed step input comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// A literal value.
    Literal(Value),
    /// The whole output of the previous step.
    Prev,
    /// The whole output of a named earlier step.
    Step(String),
    /// One field of a named earlier step's map output.
    Field(String, String),
}

/// How a step builds its request payload.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSpec {
    /// A fixed payload.
    Literal(Value),
    /// The previous step's output, verbatim.
    Prev,
    /// A map assembled from sources.
    Compose(Vec<(String, Source)>),
}

/// One step of a workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Step label; the step's output is stored in the environment under
    /// this name for later steps to reference.
    pub name: String,
    /// Service selection.
    pub selector: Selector,
    /// Operation to invoke.
    pub op: String,
    /// Request construction.
    pub input: InputSpec,
}

impl Step {
    /// Step invoking the best provider of an interface (late bound).
    pub fn interface(name: &str, interface: &str, op: &str, input: InputSpec) -> Step {
        Step {
            name: name.to_string(),
            selector: Selector::ByInterface(interface.to_string()),
            op: op.to_string(),
            input,
        }
    }

    /// Step invoking a named deployment.
    pub fn named(name: &str, service: &str, op: &str, input: InputSpec) -> Step {
        Step {
            name: name.to_string(),
            selector: Selector::ByName(service.to_string()),
            op: op.to_string(),
            input,
        }
    }
}

/// A named, ordered composition of steps serving one logical task.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    /// Workflow name (unique within its task's alternatives).
    pub name: String,
    /// The logical task it serves, e.g. `task:page-read`.
    pub task: String,
    /// Ordered steps.
    pub steps: Vec<Step>,
}

impl Workflow {
    /// Create an empty workflow for a task.
    pub fn new(name: &str, task: &str) -> Workflow {
        Workflow {
            name: name.to_string(),
            task: task.to_string(),
            steps: Vec::new(),
        }
    }

    /// Builder: append a step.
    pub fn step(mut self, step: Step) -> Workflow {
        self.steps.push(step);
        self
    }
}

/// Outcome of a workflow execution, including which alternative ran.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The output of the final step.
    pub output: Value,
    /// Name of the workflow that completed.
    pub workflow: String,
    /// How many alternatives failed before this one succeeded.
    pub failovers: usize,
}

/// Executes workflows against a bus, resolving late-bound selectors at
/// run time and failing over across registered alternatives.
#[derive(Clone)]
pub struct WorkflowEngine {
    bus: ServiceBus,
    library: Arc<RwLock<HashMap<String, Vec<Workflow>>>>,
}

impl WorkflowEngine {
    /// Create an engine bound to a bus.
    pub fn new(bus: ServiceBus) -> WorkflowEngine {
        WorkflowEngine {
            bus,
            library: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Register a workflow as an alternative for its task. Order of
    /// registration is the default preference order (paper §3.5: users can
    /// manually specify different workflows).
    pub fn register(&self, workflow: Workflow) {
        self.library
            .write()
            .entry(workflow.task.clone())
            .or_default()
            .push(workflow);
    }

    /// Remove all workflows of a task (used when recomposing).
    pub fn clear_task(&self, task: &str) {
        self.library.write().remove(task);
    }

    /// The registered alternatives for a task, in preference order.
    pub fn alternatives(&self, task: &str) -> Vec<Workflow> {
        self.library.read().get(task).cloned().unwrap_or_default()
    }

    /// Execute one workflow: resolve each step, build its input from the
    /// environment of earlier step results, invoke, and record the output.
    pub fn execute(&self, workflow: &Workflow) -> Result<Value> {
        let mut env: BTreeMap<String, Value> = BTreeMap::new();
        let mut prev = Value::Null;
        for step in &workflow.steps {
            let id = self.resolve(&step.selector)?;
            let input = self.build_input(&step.input, &prev, &env)?;
            let out = self.bus.invoke(id, &step.op, input)?;
            env.insert(step.name.clone(), out.clone());
            prev = out;
        }
        Ok(prev)
    }

    /// Execute the task through its registered alternatives: try each in
    /// preference order, failing over on *recoverable* errors (paper §3.3:
    /// "if a change occurs resource management services find alternate
    /// workflows to manage the new situation"). Non-recoverable errors
    /// (bad input, policy violations) propagate immediately — retrying a
    /// different workflow cannot fix a malformed request.
    pub fn execute_task(&self, task: &str) -> Result<Execution> {
        let alternatives = self.alternatives(task);
        if alternatives.is_empty() {
            return Err(ServiceError::NoAlternateWorkflow(task.to_string()));
        }
        let mut failovers = 0;
        let mut last_err = None;
        for wf in &alternatives {
            match self.execute(wf) {
                Ok(output) => {
                    return Ok(Execution {
                        output,
                        workflow: wf.name.clone(),
                        failovers,
                    })
                }
                Err(e) if e.is_recoverable() => {
                    failovers += 1;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| ServiceError::NoAlternateWorkflow(task.to_string())))
    }

    fn resolve(&self, selector: &Selector) -> Result<ServiceId> {
        match selector {
            Selector::ById(id) => Ok(*id),
            Selector::ByName(name) => self
                .bus
                .registry()
                .find_by_name(name)
                .map(|d| d.id)
                .ok_or_else(|| ServiceError::ServiceNotFound(name.clone())),
            Selector::ByInterface(iface) => self.bus.resolve_interface(iface),
        }
    }

    fn build_input(
        &self,
        spec: &InputSpec,
        prev: &Value,
        env: &BTreeMap<String, Value>,
    ) -> Result<Value> {
        match spec {
            InputSpec::Literal(v) => Ok(v.clone()),
            InputSpec::Prev => Ok(prev.clone()),
            InputSpec::Compose(fields) => {
                let mut out = BTreeMap::new();
                for (key, source) in fields {
                    let v = match source {
                        Source::Literal(v) => v.clone(),
                        Source::Prev => prev.clone(),
                        Source::Step(step) => env
                            .get(step)
                            .cloned()
                            .ok_or_else(|| {
                                ServiceError::Internal(format!("unknown step `{step}`"))
                            })?,
                        Source::Field(step, field) => env
                            .get(step)
                            .and_then(|v| v.get(field))
                            .cloned()
                            .ok_or_else(|| {
                                ServiceError::Internal(format!(
                                    "step `{step}` has no field `{field}`"
                                ))
                            })?,
                    };
                    out.insert(key.clone(), v);
                }
                Ok(Value::Map(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Contract;
    use crate::interface::{Interface, Operation};
    use crate::service::FnService;

    fn bus_with_math() -> ServiceBus {
        let bus = ServiceBus::new();
        let iface = Interface::new(
            "t.Math",
            1,
            vec![Operation::opaque("double"), Operation::opaque("add")],
        );
        let svc = FnService::new("math", Contract::for_interface(iface), |op, input| match op {
            "double" => Ok(Value::Int(input.require("x")?.as_int()? * 2)),
            "add" => Ok(Value::Int(
                input.require("a")?.as_int()? + input.require("b")?.as_int()?,
            )),
            _ => Err(ServiceError::Internal("bad op".into())),
        })
        .into_ref();
        bus.deploy(svc).unwrap();
        bus
    }

    #[test]
    fn pipeline_threads_results_through_env() {
        let bus = bus_with_math();
        let engine = WorkflowEngine::new(bus);
        // double(3) = 6; add(6, 10) = 16
        let wf = Workflow::new("calc", "task:calc")
            .step(Step::interface(
                "doubled",
                "t.Math",
                "double",
                InputSpec::Literal(Value::map().with("x", 3i64)),
            ))
            .step(Step::interface(
                "sum",
                "t.Math",
                "add",
                InputSpec::Compose(vec![
                    ("a".into(), Source::Step("doubled".into())),
                    ("b".into(), Source::Literal(Value::Int(10))),
                ]),
            ));
        assert_eq!(engine.execute(&wf).unwrap(), Value::Int(16));
    }

    #[test]
    fn field_source_extracts_from_maps() {
        let bus = ServiceBus::new();
        let iface = Interface::new("t.Pair", 1, vec![Operation::opaque("make"), Operation::opaque("pick")]);
        let svc = FnService::new("pair", Contract::for_interface(iface), |op, input| match op {
            "make" => Ok(Value::map().with("left", 1i64).with("right", 2i64)),
            "pick" => Ok(input),
            _ => unreachable!(),
        })
        .into_ref();
        bus.deploy(svc).unwrap();
        let engine = WorkflowEngine::new(bus);
        let wf = Workflow::new("w", "t")
            .step(Step::named("pair", "pair", "make", InputSpec::Literal(Value::Null)))
            .step(Step::named(
                "picked",
                "pair",
                "pick",
                InputSpec::Compose(vec![("v".into(), Source::Field("pair".into(), "right".into()))]),
            ));
        let out = engine.execute(&wf).unwrap();
        assert_eq!(out.get("v").unwrap().as_int().unwrap(), 2);
    }

    #[test]
    fn task_failover_on_recoverable_error() {
        let bus = bus_with_math();
        let engine = WorkflowEngine::new(bus);
        // First alternative points at a missing service; second works.
        engine.register(Workflow::new("broken", "task:calc").step(Step::named(
            "a",
            "ghost-service",
            "double",
            InputSpec::Literal(Value::map().with("x", 1i64)),
        )));
        engine.register(Workflow::new("good", "task:calc").step(Step::interface(
            "a",
            "t.Math",
            "double",
            InputSpec::Literal(Value::map().with("x", 1i64)),
        )));
        let exec = engine.execute_task("task:calc").unwrap();
        assert_eq!(exec.output, Value::Int(2));
        assert_eq!(exec.workflow, "good");
        assert_eq!(exec.failovers, 1);
    }

    #[test]
    fn non_recoverable_errors_do_not_fail_over() {
        let bus = bus_with_math();
        let engine = WorkflowEngine::new(bus);
        // "add" without fields -> InvalidInput, which is NOT recoverable.
        engine.register(Workflow::new("bad-input", "task:sum").step(Step::interface(
            "a",
            "t.Math",
            "add",
            InputSpec::Literal(Value::map()),
        )));
        engine.register(Workflow::new("never-reached", "task:sum").step(Step::interface(
            "a",
            "t.Math",
            "add",
            InputSpec::Literal(Value::map().with("a", 1i64).with("b", 2i64)),
        )));
        assert!(matches!(
            engine.execute_task("task:sum"),
            Err(ServiceError::InvalidInput(_))
        ));
    }

    #[test]
    fn no_alternatives_is_an_error() {
        let bus = ServiceBus::new();
        let engine = WorkflowEngine::new(bus);
        assert!(matches!(
            engine.execute_task("task:void"),
            Err(ServiceError::NoAlternateWorkflow(_))
        ));
    }

    #[test]
    fn late_binding_picks_up_recomposition() {
        let bus = bus_with_math();
        let engine = WorkflowEngine::new(bus.clone());
        let wf = Workflow::new("calc", "task:calc").step(Step::interface(
            "a",
            "t.Math",
            "double",
            InputSpec::Literal(Value::map().with("x", 5i64)),
        ));
        assert_eq!(engine.execute(&wf).unwrap(), Value::Int(10));

        // Replace the provider with one that triples; the same workflow
        // must route to it without modification (late binding).
        let old = bus.registry().find_by_name("math").unwrap().id;
        bus.undeploy(old).unwrap();
        let iface = Interface::new("t.Math", 1, vec![Operation::opaque("double")]);
        let tripler = FnService::new("math-v2", Contract::for_interface(iface), |_, input| {
            Ok(Value::Int(input.require("x")?.as_int()? * 3))
        })
        .into_ref();
        bus.deploy(tripler).unwrap();
        assert_eq!(engine.execute(&wf).unwrap(), Value::Int(15));
    }

    #[test]
    fn clear_task_removes_alternatives() {
        let bus = bus_with_math();
        let engine = WorkflowEngine::new(bus);
        engine.register(Workflow::new("w", "task:x"));
        assert_eq!(engine.alternatives("task:x").len(), 1);
        engine.clear_task("task:x");
        assert!(engine.alternatives("task:x").is_empty());
    }
}
