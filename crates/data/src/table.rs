//! Table handles: schema-checked row storage with index maintenance.

use std::sync::Arc;

use sbdms_access::btree::BTree;
use sbdms_access::heap::{HeapFile, Rid};
use sbdms_access::record::{decode_tuple, encode_tuple, Datum, Tuple};
use sbdms_kernel::error::{Result, ServiceError};
use sbdms_storage::buffer::BufferPool;

use crate::catalog::{Catalog, IndexMeta, TableMeta};
use crate::schema::Schema;

/// A live handle to one table: heap file + open indexes + schema.
pub struct Table {
    meta: TableMeta,
    heap: HeapFile,
    indexes: Vec<(IndexMeta, BTree)>,
    buffer: Arc<BufferPool>,
}

impl Table {
    /// Create a table: allocates its heap, registers it in the catalog.
    pub fn create(catalog: &Catalog, name: &str, schema: Schema) -> Result<Table> {
        let buffer = catalog.buffer().clone();
        let heap = HeapFile::create(buffer.clone())?;
        let meta = TableMeta {
            name: name.to_lowercase(),
            schema,
            heap_dir_page: heap.dir_page(),
            indexes: vec![],
            stats: None,
        };
        catalog.create_table(meta.clone())?;
        Ok(Table {
            meta,
            heap,
            indexes: vec![],
            buffer,
        })
    }

    /// Open a table from its catalog metadata.
    pub fn open(catalog: &Catalog, name: &str) -> Result<Table> {
        let buffer = catalog.buffer().clone();
        let meta = catalog.table(name)?;
        let heap = HeapFile::open(buffer.clone(), meta.heap_dir_page);
        let mut indexes = Vec::with_capacity(meta.indexes.len());
        for im in &meta.indexes {
            indexes.push((im.clone(), BTree::open(buffer.clone(), im.meta_page)?));
        }
        Ok(Table {
            meta,
            heap,
            indexes,
            buffer,
        })
    }

    /// The table's metadata.
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    /// The underlying heap file.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// All open indexes with their descriptors.
    pub fn indexes(&self) -> &[(IndexMeta, BTree)] {
        &self.indexes
    }

    /// Open index by name, if any.
    pub fn index_named(&self, name: &str) -> Option<&(IndexMeta, BTree)> {
        let name = name.to_lowercase();
        self.indexes.iter().find(|(m, _)| m.name == name)
    }

    /// Open index whose *leading* key column is `column`, if any
    /// (single-column convenience; prefers the shortest such key).
    pub fn index_on(&self, column: &str) -> Option<&BTree> {
        let column = column.to_lowercase();
        self.indexes
            .iter()
            .filter(|(m, _)| m.columns.first() == Some(&column))
            .min_by_key(|(m, _)| m.columns.len())
            .map(|(_, t)| t)
    }

    /// The composite index key of `row` under descriptor `im`.
    fn index_key(&self, im: &IndexMeta, row: &Tuple) -> Result<Vec<Datum>> {
        im.columns
            .iter()
            .map(|c| Ok(row[self.column_index(c)?].clone()))
            .collect()
    }

    /// Insert a row (validated against the schema). Returns its rid.
    pub fn insert(&self, row: Tuple) -> Result<Rid> {
        let row = self.meta.schema.validate(row)?;
        let rid = self.heap.insert(&encode_tuple(&row))?;
        for (im, tree) in &self.indexes {
            tree.insert(&self.index_key(im, &row)?, rid)?;
        }
        Ok(rid)
    }

    /// Read a row.
    pub fn get(&self, rid: Rid) -> Result<Tuple> {
        decode_tuple(&self.heap.get(rid)?)
    }

    /// Delete a row, maintaining indexes. Returns the old row.
    pub fn delete(&self, rid: Rid) -> Result<Tuple> {
        let old = self.get(rid)?;
        for (im, tree) in &self.indexes {
            tree.delete(&self.index_key(im, &old)?, rid)?;
        }
        self.heap.delete(rid)?;
        Ok(old)
    }

    /// Replace a row in place (rid stable), maintaining indexes. Returns
    /// the old row.
    pub fn update(&self, rid: Rid, row: Tuple) -> Result<Tuple> {
        let row = self.meta.schema.validate(row)?;
        let old = self.get(rid)?;
        self.heap.update(rid, &encode_tuple(&row))?;
        for (im, tree) in &self.indexes {
            let old_key = self.index_key(im, &old)?;
            let new_key = self.index_key(im, &row)?;
            if old_key != new_key {
                tree.delete(&old_key, rid)?;
                tree.insert(&new_key, rid)?;
            }
        }
        Ok(old)
    }

    /// Materialised scan of all rows.
    pub fn scan(&self) -> Result<Vec<(Rid, Tuple)>> {
        self.heap
            .scan()?
            .into_iter()
            .map(|(rid, bytes)| Ok((rid, decode_tuple(&bytes)?)))
            .collect()
    }

    /// Like [`scan`](Table::scan) but reading page morsels on `workers`
    /// threads. Row order matches the serial scan.
    pub fn scan_parallel(&self, workers: usize) -> Result<Vec<(Rid, Tuple)>> {
        self.heap
            .scan_parallel(workers)?
            .into_iter()
            .map(|(rid, bytes)| Ok((rid, decode_tuple(&bytes)?)))
            .collect()
    }

    /// Row count.
    pub fn len(&self) -> Result<usize> {
        self.heap.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> Result<bool> {
        self.heap.is_empty()
    }

    /// Create a secondary index over `columns` (leading column first),
    /// backfilling existing rows, and persist the new metadata.
    pub fn create_index(&mut self, catalog: &Catalog, name: &str, columns: &[String]) -> Result<()> {
        if columns.is_empty() {
            return Err(ServiceError::InvalidInput("index needs at least one column".into()));
        }
        let name = name.to_lowercase();
        let columns: Vec<String> = columns.iter().map(|c| c.to_lowercase()).collect();
        let mut cols = Vec::with_capacity(columns.len());
        for c in &columns {
            let i = self.column_index(c)?;
            if cols.contains(&i) {
                return Err(ServiceError::InvalidInput(format!(
                    "column `{c}` repeated in index key"
                )));
            }
            cols.push(i);
        }
        if self.indexes.iter().any(|(m, _)| m.name == name) {
            return Err(ServiceError::InvalidInput(format!(
                "index `{name}` already exists on `{}`",
                self.meta.name
            )));
        }
        if self.indexes.iter().any(|(m, _)| m.columns == columns) {
            return Err(ServiceError::InvalidInput(format!(
                "columns ({}) are already indexed",
                columns.join(", ")
            )));
        }
        let tree = BTree::create(self.buffer.clone())?;
        for (rid, row) in self.scan()? {
            let key: Vec<Datum> = cols.iter().map(|&i| row[i].clone()).collect();
            tree.insert(&key, rid)?;
        }
        let im = IndexMeta {
            name,
            columns,
            meta_page: tree.meta_page(),
        };
        self.meta.indexes.push(im.clone());
        catalog.update_table(self.meta.clone())?;
        self.indexes.push((im, tree));
        Ok(())
    }

    /// Drop a secondary index by name, persisting the new metadata. The
    /// tree's meta page is freed; node pages are leaked like
    /// [`rebuild_indexes`](Table::rebuild_indexes) (bounded by the next
    /// checkpoint's fresh baseline).
    pub fn drop_index(&mut self, catalog: &Catalog, name: &str) -> Result<()> {
        let name = name.to_lowercase();
        let pos = self
            .indexes
            .iter()
            .position(|(m, _)| m.name == name)
            .ok_or_else(|| {
                ServiceError::InvalidInput(format!(
                    "no such index `{name}` on `{}`",
                    self.meta.name
                ))
            })?;
        let (im, _) = self.indexes.remove(pos);
        self.meta.indexes.retain(|m| m.name != name);
        catalog.update_table(self.meta.clone())?;
        let _ = self.buffer.free_page(im.meta_page);
        Ok(())
    }

    /// Consistency check for crash recovery: every heap row decodes and
    /// passes the schema, every index is structurally valid, and each
    /// index's entry set is exactly the heap's `(column value, rid)` set.
    pub fn validate(&self) -> Result<()> {
        let rows = self.scan()?;
        for (rid, row) in &rows {
            self.meta.schema.validate(row.clone()).map_err(|e| {
                ServiceError::Storage(format!(
                    "table `{}`: row at {rid:?} fails schema: {e}",
                    self.meta.name
                ))
            })?;
        }
        for (im, tree) in &self.indexes {
            tree.validate()?;
            let entries = tree.range(None, None, true, true)?;
            if entries.len() != rows.len() {
                return Err(ServiceError::Storage(format!(
                    "index `{}` on `{}` has {} entries for {} rows",
                    im.name,
                    self.meta.name,
                    entries.len(),
                    rows.len()
                )));
            }
            let by_rid: std::collections::HashMap<Rid, &Tuple> =
                rows.iter().map(|(rid, row)| (*rid, row)).collect();
            for (key, rid) in entries {
                match by_rid.get(&rid) {
                    Some(row) if self.index_key(im, row)? == key => {}
                    Some(_) => {
                        return Err(ServiceError::Storage(format!(
                            "index `{}` on `{}`: stale key for {rid:?}",
                            im.name, self.meta.name
                        )))
                    }
                    None => {
                        return Err(ServiceError::Storage(format!(
                            "index `{}` on `{}`: dangling entry {rid:?}",
                            im.name, self.meta.name
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebuild every index from the heap, repointing the catalog at the
    /// fresh trees. Used after crash recovery rolled transactions back:
    /// a stolen index page may have persisted while the matching heap
    /// write did not (or vice versa), leaving stale or dangling entries
    /// that incremental maintenance cannot see. The old trees' pages are
    /// leaked rather than freed — recovery may crash again, and a freed
    /// page that the durable catalog still references would be worse
    /// than a space leak (the next checkpoint's fresh baseline bounds it).
    pub fn rebuild_indexes(&mut self, catalog: &Catalog) -> Result<()> {
        if self.indexes.is_empty() {
            return Ok(());
        }
        let rows = self.scan()?;
        let mut rebuilt = Vec::with_capacity(self.indexes.len());
        for (im, _) in &self.indexes {
            let tree = BTree::create(self.buffer.clone())?;
            for (rid, row) in &rows {
                tree.insert(&self.index_key(im, row)?, *rid)?;
            }
            let mut im = im.clone();
            im.meta_page = tree.meta_page();
            rebuilt.push((im, tree));
        }
        self.meta.indexes = rebuilt.iter().map(|(im, _)| im.clone()).collect();
        catalog.update_table(self.meta.clone())?;
        self.indexes = rebuilt;
        Ok(())
    }

    /// Destroy the table's storage and remove it from the catalog.
    pub fn drop(self, catalog: &Catalog) -> Result<()> {
        catalog.drop_table(&self.meta.name)?;
        self.heap.destroy()?;
        // Index pages are leaked intentionally-simply? No: free their
        // meta pages at least; node pages are reachable only through the
        // tree, which we drop wholesale by freeing what we can reach.
        for (im, _) in &self.indexes {
            let _ = self.buffer.free_page(im.meta_page);
        }
        Ok(())
    }

    fn column_index(&self, column: &str) -> Result<usize> {
        self.meta.schema.index_of(column).ok_or_else(|| {
            ServiceError::Internal(format!(
                "index column `{column}` missing from schema of `{}`",
                self.meta.name
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use sbdms_access::record::Datum;
    use sbdms_storage::replacement::PolicyKind;
    use sbdms_storage::services::StorageEngine;

    fn setup(name: &str) -> Catalog {
        let dir = std::env::temp_dir()
            .join("sbdms-table-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = StorageEngine::open(&dir, 64, PolicyKind::Lru).unwrap();
        Catalog::open(engine.buffer).unwrap()
    }

    fn users_schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", ColumnType::Int),
            Column::not_null("name", ColumnType::Text),
        ])
        .unwrap()
    }

    fn row(id: i64, name: &str) -> Tuple {
        vec![Datum::Int(id), Datum::Str(name.into())]
    }

    #[test]
    fn crud_lifecycle() {
        let catalog = setup("crud");
        let table = Table::create(&catalog, "users", users_schema()).unwrap();
        let rid = table.insert(row(1, "alice")).unwrap();
        assert_eq!(table.get(rid).unwrap(), row(1, "alice"));

        table.update(rid, row(1, "alicia")).unwrap();
        assert_eq!(table.get(rid).unwrap()[1], Datum::Str("alicia".into()));

        let old = table.delete(rid).unwrap();
        assert_eq!(old[1], Datum::Str("alicia".into()));
        assert!(table.get(rid).is_err());
        assert!(table.is_empty().unwrap());
    }

    #[test]
    fn schema_enforced_on_write() {
        let catalog = setup("schema");
        let table = Table::create(&catalog, "users", users_schema()).unwrap();
        assert!(table.insert(vec![Datum::Int(1)]).is_err());
        assert!(table
            .insert(vec![Datum::Str("not-an-int".into()), Datum::Str("x".into())])
            .is_err());
        assert!(table.insert(vec![Datum::Null, Datum::Str("x".into())]).is_err());
    }

    fn cols(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn index_maintenance_through_dml() {
        let catalog = setup("index");
        let mut table = Table::create(&catalog, "users", users_schema()).unwrap();
        for i in 0..50 {
            table.insert(row(i, &format!("user{i}"))).unwrap();
        }
        table.create_index(&catalog, "users_id", &cols(&["id"])).unwrap();

        let tree = table.index_on("id").unwrap();
        assert_eq!(tree.len().unwrap(), 50, "backfill indexed existing rows");
        let hits = tree.search(&[Datum::Int(7)]).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(table.get(hits[0]).unwrap(), row(7, "user7"));

        // Insert/update/delete maintain the index.
        let rid = table.insert(row(100, "newbie")).unwrap();
        assert_eq!(table.index_on("id").unwrap().search(&[Datum::Int(100)]).unwrap(), vec![rid]);

        table.update(rid, row(200, "renamed")).unwrap();
        assert!(table.index_on("id").unwrap().search(&[Datum::Int(100)]).unwrap().is_empty());
        assert_eq!(table.index_on("id").unwrap().search(&[Datum::Int(200)]).unwrap(), vec![rid]);

        table.delete(rid).unwrap();
        assert!(table.index_on("id").unwrap().search(&[Datum::Int(200)]).unwrap().is_empty());
    }

    #[test]
    fn composite_index_maintenance_and_drop() {
        let catalog = setup("composite-index");
        let mut table = Table::create(&catalog, "users", users_schema()).unwrap();
        for i in 0..30 {
            table.insert(row(i % 3, &format!("user{i}"))).unwrap();
        }
        table
            .create_index(&catalog, "users_id_name", &cols(&["id", "name"]))
            .unwrap();
        let (im, tree) = table.index_named("users_id_name").unwrap();
        assert_eq!(im.columns, vec!["id", "name"]);
        assert_eq!(tree.len().unwrap(), 30);
        // Full composite probe hits exactly one row.
        let hits = tree
            .search(&[Datum::Int(1), Datum::Str("user7".into())])
            .unwrap();
        assert_eq!(hits.len(), 1);
        // Prefix probe hits the whole id group.
        assert_eq!(tree.search(&[Datum::Int(1)]).unwrap().len(), 10);

        // Update that changes only the second key column re-keys the index.
        let rid = hits[0];
        table.update(rid, row(1, "renamed")).unwrap();
        let (_, tree) = table.index_named("users_id_name").unwrap();
        assert!(tree
            .search(&[Datum::Int(1), Datum::Str("user7".into())])
            .unwrap()
            .is_empty());
        assert_eq!(
            tree.search(&[Datum::Int(1), Datum::Str("renamed".into())]).unwrap(),
            vec![rid]
        );
        table.validate().unwrap();

        // Drop removes it from the handle and the catalog.
        table.drop_index(&catalog, "users_id_name").unwrap();
        assert!(table.index_named("users_id_name").is_none());
        assert!(catalog.table("users").unwrap().indexes.is_empty());
        assert!(table.drop_index(&catalog, "users_id_name").is_err());
    }

    #[test]
    fn duplicate_index_rejected() {
        let catalog = setup("dup-index");
        let mut table = Table::create(&catalog, "users", users_schema()).unwrap();
        table.create_index(&catalog, "i1", &cols(&["id"])).unwrap();
        assert!(table.create_index(&catalog, "i2", &cols(&["id"])).is_err(), "same column set");
        assert!(table.create_index(&catalog, "i1", &cols(&["name"])).is_err(), "same name");
        assert!(table.create_index(&catalog, "i3", &cols(&["ghost"])).is_err());
        assert!(table.create_index(&catalog, "i4", &cols(&["id", "id"])).is_err(), "repeated column");
        assert!(table.create_index(&catalog, "i5", &[]).is_err());
        // A composite over the same leading column is allowed.
        table.create_index(&catalog, "i6", &cols(&["id", "name"])).unwrap();
    }

    #[test]
    fn reopen_table_with_indexes() {
        let dir = std::env::temp_dir()
            .join("sbdms-table-tests")
            .join(format!("reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let engine = StorageEngine::open(&dir, 64, PolicyKind::Lru).unwrap();
            let catalog = Catalog::open(engine.buffer.clone()).unwrap();
            let mut table = Table::create(&catalog, "users", users_schema()).unwrap();
            for i in 0..20 {
                table.insert(row(i, &format!("u{i}"))).unwrap();
            }
            table.create_index(&catalog, "users_id", &cols(&["id"])).unwrap();
            engine.buffer.flush_all().unwrap();
        }
        let engine = StorageEngine::open(&dir, 64, PolicyKind::Lru).unwrap();
        let catalog = Catalog::open(engine.buffer).unwrap();
        let table = Table::open(&catalog, "users").unwrap();
        assert_eq!(table.len().unwrap(), 20);
        let hits = table.index_on("id").unwrap().search(&[Datum::Int(13)]).unwrap();
        assert_eq!(table.get(hits[0]).unwrap(), row(13, "u13"));
    }

    #[test]
    fn drop_removes_table() {
        let catalog = setup("drop");
        let table = Table::create(&catalog, "users", users_schema()).unwrap();
        table.insert(row(1, "a")).unwrap();
        table.drop(&catalog).unwrap();
        assert!(catalog.table("users").is_err());
        assert!(Table::open(&catalog, "users").is_err());
    }

    #[test]
    fn update_same_indexed_value_is_noop_on_index() {
        let catalog = setup("noop");
        let mut table = Table::create(&catalog, "users", users_schema()).unwrap();
        let rid = table.insert(row(1, "a")).unwrap();
        table.create_index(&catalog, "i", &cols(&["id"])).unwrap();
        table.update(rid, row(1, "b")).unwrap();
        assert_eq!(table.index_on("id").unwrap().search(&[Datum::Int(1)]).unwrap(), vec![rid]);
    }
}
